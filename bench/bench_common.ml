(** Shared plumbing for the paper-figure benchmarks: building machines,
    populating structures, and running the set benchmark of §5.2 under the
    shared-memory, ffwd and DPS harnesses. *)

module Machine = Dps_machine.Machine
module Topology = Dps_machine.Topology
module Sthread = Dps_sthread.Sthread
module Alloc = Dps_sthread.Alloc
module Prng = Dps_simcore.Prng
module Keydist = Dps_workload.Keydist
module Driver = Dps_workload.Driver

module type SET = Dps_ds.Set_intf.SET
module Par = Dps_simcore.Par

let quick = Sys.getenv_opt "BENCH_QUICK" <> None

(* --- domain-parallel experiment runner ---

   Experiment points are independent single-threaded simulations (each
   harness below builds its own machine, scheduler and PRNGs), so a figure
   fans its points out across OCaml domains and merges results in point
   order. The determinism contract: every point computes exactly what it
   computes under [-j1] (no shared mutable state), and all printing / JSON
   recording happens on the main domain after the fan-out — so stdout and
   BENCH_*.json are byte-identical for every [-j].

   The profiler/tracer ([Dps_obs.Obs]) is global state by design
   (bit-identical-off contract, DESIGN.md §6); when it is on, the runner
   degrades to sequential rather than interleave observability streams. *)

let jobs =
  ref
    (match Sys.getenv_opt "BENCH_JOBS" with
    | Some s -> ( match int_of_string_opt (String.trim s) with Some n when n >= 1 -> n | _ -> 1)
    | None -> 1)

let set_jobs n = jobs := max 1 n
let runner_jobs () = !jobs

let run_all thunks =
  let effective = if Dps_obs.Obs.on () then 1 else !jobs in
  Par.map ~jobs:effective thunks

(* Evaluate [f] over [xs] with results in list order; the workhorse for
   figure drivers ("compute all points, then print"). *)
let map_points f xs = Array.to_list (run_all (Array.of_list (List.map (fun x () -> f x) xs)))

(* Evaluate a whole figure's (series x point) grid in one fan-out — the
   thunks flatten row-major, so a slow series overlaps the others — and
   return it reshaped, ready to print in order. *)
let run_series (series : (string * (string * (unit -> 'r)) list) list) :
    (string * (string * 'r) list) list =
  let thunks = Array.of_list (List.concat_map (fun (_, pts) -> List.map snd pts) series) in
  let res = run_all thunks in
  let i = ref 0 in
  List.map
    (fun (label, pts) ->
      ( label,
        List.map
          (fun (x, _) ->
            let r = res.(!i) in
            incr i;
            (x, r))
          pts ))
    series

(* Full-size machine for contention experiments; capacity experiments use
   the scaled machine with working sets scaled the same way (factor 16), so
   the LLC knee falls at the same relative position. *)
let full_config = Machine.config_default
let scaled_config = Machine.config_scaled ()
let scale_factor = 16

let default_duration = if quick then 100_000 else 300_000

type workload = {
  threads : int;
  size : int;  (* initial key population *)
  update_pct : int;  (* 0..100 *)
  skewed : bool;
  duration : int;
  min_ops : int option;  (* per-thread floor, for very long operations *)
}

let workload ?(threads = 80) ?(size = 4096) ?(update_pct = 50) ?(skewed = true)
    ?(duration = default_duration) ?min_ops () =
  { threads; size; update_pct; skewed; duration; min_ops }

(* Distinct initial keys: odd keys so the benchmark key range (2x size)
   interleaves hits and misses, as in ASCYLIB's harness. *)
let population_keys ~size ~seed =
  let prng = Prng.create seed in
  let keys = Array.init size (fun i -> (2 * i) + 1) in
  for i = size - 1 downto 1 do
    let j = Prng.int prng (i + 1) in
    let tmp = keys.(i) in
    keys.(i) <- keys.(j);
    keys.(j) <- tmp
  done;
  keys

type populate_order = Descending | Balanced | Shuffled

(* Cold population. Lists need descending order (O(1) at the head); BSTs
   get either a balanced insertion order or the shuffled order whose depth
   matches random insertion. *)
let populate (type a) (module S : SET with type t = a) (set : a) ~keys ~order =
  match order with
  | Shuffled -> Array.iter (fun key -> ignore (S.insert set ~key ~value:key)) keys
  | Descending ->
      let sorted = Array.copy keys in
      Array.sort (fun a b -> compare b a) sorted;
      Array.iter (fun key -> ignore (S.insert set ~key ~value:key)) sorted
  | Balanced ->
      let sorted = Array.copy keys in
      Array.sort compare sorted;
      let rec go lo hi =
        if lo <= hi then begin
          let mid = (lo + hi) / 2 in
          ignore (S.insert set ~key:sorted.(mid) ~value:sorted.(mid));
          go lo (mid - 1);
          go (mid + 1) hi
        end
      in
      go 0 (Array.length sorted - 1)

let order_for_name name =
  if String.length name >= 3 && String.sub name 0 3 = "bst" then Balanced
  else
    match name with
    | "lb-b" | "lf-n" | "lf-h" | "bst-tk" -> Balanced
    | "lb-h" | "lf-f" | "lf-s" -> Shuffled
    | _ -> Descending

(* The §5.2 per-operation mix: pick a key from [0, 2*size), then update
   (half inserts, half removes) or lookup. *)
let mk_op_mix (w : workload) ~insert ~remove ~lookup =
  let dist =
    if w.skewed then Keydist.zipf ~range:(2 * w.size) ()
    else Keydist.uniform ~range:(2 * w.size)
  in
  fun ~tid:_ ~step:_ ->
    let p = Sthread.self_prng () in
    let key = Keydist.sample dist p in
    if Prng.int p 100 < w.update_pct then
      if Prng.bool p then insert key else remove key
    else lookup key

(* --- shared-memory harness --- *)

let run_shared (module S : SET) ~config (w : workload) =
  let m = Machine.create config in
  let sched = Sthread.create m in
  let alloc = Alloc.create m ~cold:Alloc.Spread in
  let set = S.create alloc in
  populate (module S) set
    ~keys:(population_keys ~size:w.size ~seed:11L)
    ~order:(order_for_name S.name);
  S.maintenance set;
  Driver.measure ~sched ~threads:w.threads ~duration:w.duration ?min_ops:w.min_ops
    ~op:
      (mk_op_mix w
         ~insert:(fun key -> ignore (S.insert set ~key ~value:key))
         ~remove:(fun key -> ignore (S.remove set key))
         ~lookup:(fun key -> ignore (S.lookup set key)))
    ()

(* --- DPS harness: one S.t per partition, locality of 10, as in §5 --- *)

(* Mix keys before the modulo so partition load does not depend on key
   parity or stride (populations use odd keys). *)
let partition_hash k = (k * 0x9E3779B1) lsr 8

let run_dps (module S : SET) ~config ?(locality_size = 10) (w : workload) =
  let m = Machine.create config in
  let sched = Sthread.create m in
  let dps =
    Dps.create sched ~nclients:w.threads ~locality_size
      ~hash:partition_hash
      ~mk_data:(fun (info : Dps.partition_info) -> S.create info.Dps.alloc)
      ()
  in
  let keys = population_keys ~size:w.size ~seed:11L in
  (* per-partition cold population in that structure's preferred order *)
  let nparts = Dps.npartitions dps in
  let parts = Array.make nparts [] in
  Array.iter
    (fun k -> parts.(Dps.partition_of_key dps k) <- k :: parts.(Dps.partition_of_key dps k))
    keys;
  for p = 0 to nparts - 1 do
    let part = Dps.partition_data dps p in
    populate (module S) part ~keys:(Array.of_list parts.(p)) ~order:(order_for_name S.name);
    S.maintenance part
  done;
  let placement = Array.init w.threads (Dps.client_hw dps) in
  Driver.measure ~sched ~threads:w.threads ~placement ~duration:w.duration ?min_ops:w.min_ops
    ~prologue:(fun ~tid -> Dps.attach dps ~client:tid)
    ~epilogue:(fun ~tid:_ ->
      Dps.client_done dps;
      Dps.drain dps)
    ~op:
      (mk_op_mix w
         ~insert:(fun key ->
           ignore (Dps.call dps ~key (fun s -> if S.insert s ~key ~value:key then 1 else 0)))
         ~remove:(fun key -> ignore (Dps.call dps ~key (fun s -> if S.remove s key then 1 else 0)))
         ~lookup:(fun key ->
           ignore
             (Dps.call dps ~key (fun s -> match S.lookup s key with Some v -> v | None -> -1))))
    ()

(* --- ffwd harness: data sharded across 1 or 4 dedicated servers --- *)

let run_ffwd (module S : SET) ~config ~servers (w : workload) =
  let m = Machine.create config in
  let topo = Machine.topology m in
  let sched = Sthread.create m in
  (* servers take the first hardware thread of each socket *)
  let server_hw =
    Array.init servers (fun i ->
        i * topo.Topology.cores_per_socket * topo.Topology.threads_per_core)
  in
  let shards =
    Array.map
      (fun hw ->
        let node = Topology.socket_of_thread topo hw in
        S.create (Alloc.create m ~cold:(Alloc.Node node)))
      server_hw
  in
  let f = Dps_ffwd.Ffwd.create sched ~server_hw ~clients:w.threads in
  let keys = population_keys ~size:w.size ~seed:11L in
  let per_shard = Array.make servers [] in
  Array.iter (fun k -> per_shard.(k mod servers) <- k :: per_shard.(k mod servers)) keys;
  for s = 0 to servers - 1 do
    populate (module S)
      shards.(s)
      ~keys:(Array.of_list per_shard.(s))
      ~order:(order_for_name S.name);
    S.maintenance shards.(s)
  done;
  (* clients avoid the server threads *)
  let all = Topology.placement topo ~n:(min (Topology.nthreads topo) (w.threads + servers)) in
  let server_set = Array.to_list server_hw in
  let client_hws =
    Array.of_list (List.filter (fun hw -> not (List.mem hw server_set)) (Array.to_list all))
  in
  let placement = Array.init w.threads (fun i -> client_hws.(i mod Array.length client_hws)) in
  let shard_call key op =
    Dps_ffwd.Ffwd.call f ~server:(key mod servers) (fun () -> op shards.(key mod servers))
  in
  Driver.measure ~sched ~threads:w.threads ~placement ~duration:w.duration ?min_ops:w.min_ops
    ~prologue:(fun ~tid -> Dps_ffwd.Ffwd.attach f ~client:tid)
    ~epilogue:(fun ~tid:_ -> Dps_ffwd.Ffwd.client_done f)
    ~op:
      (mk_op_mix w
         ~insert:(fun key ->
           ignore (shard_call key (fun s -> if S.insert s ~key ~value:key then 1 else 0)))
         ~remove:(fun key -> ignore (shard_call key (fun s -> if S.remove s key then 1 else 0)))
         ~lookup:(fun key ->
           ignore (shard_call key (fun s -> match S.lookup s key with Some v -> v | None -> -1))))
    ()

(* --- printing and machine-readable output ---

   While an experiment runs, every table row also lands in a JSON buffer;
   [Bench_common.json_end] (called by bench/main.ml around each experiment)
   writes it to BENCH_<experiment>.json next to the text output. Records are
   flat: {"section", "series", "x", <metric>: float, ...} — one per plotted
   point, so downstream tooling re-plots figures without scraping tables. *)

let json_buf : Buffer.t option ref = ref None
let json_first = ref true
let json_section = ref ""

let json_begin () =
  json_buf := Some (Buffer.create 4096);
  json_first := true;
  json_section := ""

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 32 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Leak detector for the determinism contract: the JSON buffer (like all
   printing) belongs to the main domain. A point that records from inside
   the fan-out would interleave nondeterministically — fail fast instead. *)
let assert_main_domain what =
  if Par.in_worker () then
    invalid_arg
      (Printf.sprintf "Bench_common.%s: called from inside a parallel experiment point" what)

let json_record ~series ~x (fields : (string * float) list) =
  assert_main_domain "json_record";
  match !json_buf with
  | None -> ()
  | Some b ->
      if not !json_first then Buffer.add_string b ",\n";
      json_first := false;
      Buffer.add_string b
        (Printf.sprintf "  {\"section\": \"%s\", \"series\": \"%s\", \"x\": \"%s\""
           (json_escape !json_section) (json_escape series) (json_escape x));
      List.iter
        (fun (k, v) ->
          let v = if Float.is_finite v then Printf.sprintf "%.6g" v else "null" in
          Buffer.add_string b (Printf.sprintf ", \"%s\": %s" (json_escape k) v))
        fields;
      Buffer.add_char b '}'

let json_end ~name =
  match !json_buf with
  | None -> ()
  | Some b ->
      json_buf := None;
      let oc = open_out (Printf.sprintf "BENCH_%s.json" name) in
      output_string oc "[\n";
      output_string oc (Buffer.contents b);
      output_string oc "\n]\n";
      close_out oc

let print_header title =
  assert_main_domain "print_header";
  json_section := title;
  Printf.printf "\n=== %s ===\n%!" title

let print_series ~label (xs : (string * Driver.result) list) =
  List.iter
    (fun (x, r) -> json_record ~series:label ~x [ ("throughput_mops", r.Driver.throughput_mops) ])
    xs;
  Printf.printf "%-14s %s\n" label
    (String.concat "  " (List.map (fun (x, _) -> Printf.sprintf "%10s" x) xs));
  Printf.printf "%-14s %s\n%!" ""
    (String.concat "  "
       (List.map (fun (_, r) -> Printf.sprintf "%10.3f" r.Driver.throughput_mops) xs))

let print_misses ~label (xs : (string * Driver.result) list) =
  List.iter
    (fun (x, r) ->
      json_record ~series:(label ^ "/misses") ~x
        [ ("llc_misses_per_op", r.Driver.llc_misses_per_op) ])
    xs;
  Printf.printf "%-14s %s  (LLC misses/op)\n%!" (label ^ " miss")
    (String.concat "  "
       (List.map (fun (_, r) -> Printf.sprintf "%10.2f" r.Driver.llc_misses_per_op) xs))

let core_counts = if quick then [ 10; 40; 80 ] else [ 10; 20; 30; 40; 50; 60; 70; 80 ]

(** The network figure: memcached served through the simulated NIC/link/DMA
    front-end, closed- and open-loop client fleets against three backends —
    shared-memory (stock), single-server delegation (ffwd) and DPS-ParSec.
    This is the end-to-end complement to Figure 13: the same store variants,
    but driven over connections with wire parsing, ring DMA and socket-aware
    connection placement instead of in-process call stubs. *)

open Bench_common
module Machine = Dps_machine.Machine
module Sthread = Dps_sthread.Sthread
module Net = Dps_net.Net
module Server = Dps_server.Server
module Netload = Dps_workload.Netload
module Variants = Dps_memcached.Variants

let items = if quick then 4096 else 16384

type which = Stock | Ffwd_mc | Dps_parsec

let name_of = function Stock -> "stock" | Ffwd_mc -> "ffwd" | Dps_parsec -> "DPS-ParSec"
let backends = [ Dps_parsec; Stock; Ffwd_mc ]

let make which sched ~npollers =
  let buckets = items and capacity = 2 * items in
  match which with
  | Stock -> Variants.stock sched ~nclients:npollers ~buckets ~capacity
  | Ffwd_mc -> Variants.ffwd_mc sched ~nclients:npollers ~buckets ~capacity
  | Dps_parsec ->
      Variants.dps_parsec sched ~self_healing:true ~nclients:npollers ~locality_size:10 ~buckets
        ~capacity ()

type point = { r : Netload.result; local_pct : float; requests : int }

let run which ~nclients ~set_pct ~mode () =
  let m = Machine.create scaled_config in
  let sched = Sthread.create m in
  let net = Net.create sched () in
  let npollers = 40 in
  let backend = make which sched ~npollers in
  backend.Variants.populate ~keys:(Array.init items Fun.id) ~val_lines:2;
  let srv = Server.start sched net ~backend { Server.default_config with npollers } in
  let nconns = max 32 (min 256 (nclients / 16)) in
  let sp = Netload.spec ~nclients ~nconns ~set_pct ~mget:1 ~key_range:items ?mode () in
  let r =
    Netload.run sched net sp ~duration:default_duration ~stop:(fun () -> Server.stop srv) ()
  in
  {
    r;
    local_pct = Net.local_fraction net *. 100.0;
    requests = (Server.stats srv).Server.requests;
  }

let record ~series ~x (p : point) =
  json_record ~series ~x
    [
      ("throughput_mops", p.r.Netload.throughput_mops);
      ("p50", float_of_int p.r.Netload.p50);
      ("p99", float_of_int p.r.Netload.p99);
      ("p999", float_of_int p.r.Netload.p999);
      ("local_pct", p.local_pct);
      ("completed", float_of_int p.r.Netload.completed);
      ("errors", float_of_int p.r.Netload.errors);
    ]

let print_points ~label (xs : (string * point) list) =
  List.iter (fun (x, p) -> record ~series:label ~x p) xs;
  Printf.printf "%-14s %s\n" label
    (String.concat "  " (List.map (fun (x, _) -> Printf.sprintf "%10s" x) xs));
  Printf.printf "%-14s %s  (Mops/s)\n" ""
    (String.concat "  "
       (List.map (fun (_, p) -> Printf.sprintf "%10.3f" p.r.Netload.throughput_mops) xs));
  Printf.printf "%-14s %s  (p99 cyc)\n" ""
    (String.concat "  " (List.map (fun (_, p) -> Printf.sprintf "%10d" p.r.Netload.p99) xs));
  Printf.printf "%-14s %s  (local %%)\n%!" ""
    (String.concat "  " (List.map (fun (_, p) -> Printf.sprintf "%10.1f" p.local_pct) xs))

let client_counts = if quick then [ 64; 4096 ] else [ 64; 256; 1024; 4096; 16384; 65536 ]

(* All (backend x point) simulations of a panel in one fan-out. *)
let panel ~xs run_of =
  List.iter
    (fun (label, pts) -> print_points ~label pts)
    (run_series
       (List.map
          (fun which -> (name_of which, List.map (fun (x, p) -> (x, fun () -> run_of which p)) xs))
          backends))

let net_clients () =
  print_header "Net (a): closed-loop throughput vs simulated clients, 10% set";
  panel
    ~xs:(List.map (fun n -> (string_of_int n, n)) client_counts)
    (fun which n -> run which ~nclients:n ~set_pct:10 ~mode:None ())

let net_sets () =
  print_header "Net (b): closed-loop throughput vs set ratio, 4096 clients";
  let ratios = if quick then [ 1; 99 ] else [ 1; 20; 40; 60; 80; 99 ] in
  panel
    ~xs:(List.map (fun s -> (string_of_int s, s)) ratios)
    (fun which s -> run which ~nclients:4096 ~set_pct:s ~mode:None ())

let net_open () =
  print_header "Net (c): open-loop tail latency vs offered load (Mops/s), 10% set";
  let rates = if quick then [ 40.0 ] else [ 10.0; 20.0; 40.0; 60.0; 80.0 ] in
  panel
    ~xs:(List.map (fun r -> (Printf.sprintf "%g" r, r)) rates)
    (fun which r ->
      run which ~nclients:4096 ~set_pct:10 ~mode:(Some (Netload.Open { rate_mops = r })) ())

let all () =
  net_clients ();
  net_sets ();
  net_open ()

(** The cluster figure: sharded multi-node serving with failover, driven
    by a declarative stress-scenario matrix. Each scenario is a data
    record — fleet shape, key pattern, fault plan — plus a set of gates
    (p99 bound, goodput floor, exactly-once, kill-recovery). The matrix
    covers the failure modes the cluster layer exists for: incast onto one
    shard, all-to-all fan-out, a whole-node kill mid-run, a connection
    churn storm and hot-key skew. Every stage checks the exactly-once
    ledger ({!Dps_check.Eo}): no acked set may be lost or double-applied
    by the retry/failover machinery. *)

open Bench_common
module Machine = Dps_machine.Machine
module Sthread = Dps_sthread.Sthread
module Netload = Dps_workload.Netload
module Cluster = Dps_cluster.Cluster
module Ring = Dps_cluster.Ring
module Eo = Dps_check.Eo
module Server = Dps_server.Server
module Frontcache = Dps_server.Frontcache
module Net = Dps_net.Net

let items = if quick then 4096 else 16384

(* --- the scenario matrix, as data --- *)

type gates = {
  g_max_p99 : int;  (* cycles; 0 = ungated *)
  g_min_goodput : float;  (* Mops/s; 0 = ungated *)
  g_exactly_once : bool;  (* no lost-acked / double-applied ops *)
  g_recovery_pct : float;  (* post-kill goodput floor vs pre-kill; 0 = ungated *)
  g_reroute_cycles : int;  (* kill -> declared-dead bound; 0 = ungated *)
  g_max_spread : float;  (* hot-shard p99 / median node p99 bound; 0 = ungated *)
  g_min_conns : int;  (* floor on connections actually dialed; 0 = ungated *)
}

let gates ?(max_p99 = 0) ?(min_goodput = 0.0) ?(exactly_once = true)
    ?(recovery_pct = 0.0) ?(reroute_cycles = 0) ?(max_spread = 0.0) ?(min_conns = 0) () =
  {
    g_max_p99 = max_p99;
    g_min_goodput = min_goodput;
    g_exactly_once = exactly_once;
    g_recovery_pct = recovery_pct;
    g_reroute_cycles = reroute_cycles;
    g_max_spread = max_spread;
    g_min_conns = min_conns;
  }

type scenario = {
  sname : string;
  sdesc : string;
  nnodes : int;
  nclients : int;
  nconns : int;  (* per node *)
  set_pct : int;
  zipfian : bool;  (* hot-key skew (Zipf theta 0.99) vs uniform *)
  incast : bool;  (* restrict keys to node 0's shard *)
  kill_frac : float;  (* kill node 1 at this fraction of the run; 0 = none *)
  churn : int;  (* churn interval, cycles; 0 = none *)
  front_cache : int;  (* per-poller front-cache entries; 0 = off *)
  sthink : int;  (* closed-loop think override; 0 = the 4000-cycle default *)
  s_npollers : int;  (* pollers per node override; 0 = cluster default *)
  s_max_conns : int;  (* server connection-limit override; 0 = template *)
  s_ring_lines : int;  (* per-conn ring size override; 0 = net default *)
  s_park_max : int;  (* poller park ceiling override; 0 = template *)
  s_shed : int;  (* shed-threshold override; 0 = template *)
  s_items : int;  (* keyspace override; 0 = matrix default *)
  sduration : int;
  sgates : gates;
}

let scen ?(nnodes = 4) ?(nclients = 512) ?(nconns = 16) ?(set_pct = 10)
    ?(zipfian = false) ?(incast = false) ?(kill_frac = 0.0) ?(churn = 0)
    ?(front_cache = 0) ?(think = 0) ?(npollers = 0) ?(max_conns = 0) ?(ring_lines = 0)
    ?(park_max = 0) ?(shed = 0) ?(keyspace = 0) ?(duration = default_duration)
    ~gates:sgates ~desc:sdesc sname =
  {
    sname;
    sdesc;
    nnodes;
    nclients;
    nconns;
    set_pct;
    zipfian;
    incast;
    kill_frac;
    churn;
    front_cache;
    sthink = think;
    s_npollers = npollers;
    s_max_conns = max_conns;
    s_ring_lines = ring_lines;
    s_park_max = park_max;
    s_shed = shed;
    s_items = keyspace;
    sduration = duration;
    sgates;
  }

let kill_duration = if quick then 240_000 else 600_000

(* Gate calibration: bounds are ~2x the measured steady-state values of
   the seed run, so they catch regressions (queueing collapse, broken
   rerouting) without tripping on scheduler noise. *)
let matrix =
  [
    scen "baseline"
      ~desc:"1:1 — balanced fleet, uniform keys, 4 shards"
      ~gates:(gates ~max_p99:200_000 ~min_goodput:10.0 ());
    scen "incast"
      ~desc:"N:1 — every client keyed onto node 0's shard"
      ~incast:true
      ~gates:(gates ~max_p99:400_000 ~min_goodput:2.0 ());
    scen "all-to-all"
      ~desc:"every client pool fans out over every shard"
      ~nclients:(if quick then 1024 else 2048)
      ~nconns:32
      ~gates:(gates ~max_p99:500_000 ~min_goodput:15.0 ());
    (* moderate load: the recovery gate measures rerouting, not the raw
       capacity loss of 4 -> 3 nodes, so the fleet must not saturate *)
    scen "node-kill"
      ~desc:"node 1 crashes mid-run; ring replays, fleet reroutes"
      ~nclients:256 ~kill_frac:0.4 ~duration:kill_duration
      ~gates:
        (gates ~max_p99:0 ~min_goodput:5.0 ~recovery_pct:90.0
           ~reroute_cycles:(2 * Cluster.default_config.Cluster.probe_interval + 40_000)
           ());
    scen "churn-storm"
      ~desc:"connections recycled continuously under load"
      ~churn:(if quick then 2_000 else 1_000)
      ~gates:(gates ~max_p99:350_000 ~min_goodput:8.0 ());
    scen "hot-key"
      ~desc:"Zipf 0.99 skew — one shard owns the hot keys"
      ~zipfian:true
      ~gates:(gates ~max_p99:200_000 ~min_goodput:10.0 ~max_spread:3.0 ());
    (* the front-cache A/B pair: the same Zipf skew, but shaped so the
       cache's target — the hot shard's delegation fan-in — is the
       bottleneck and everything else has headroom. Eight narrow shards
       (4 pollers each) concentrate the skew: the hot shard owns a
       larger share of the traffic than its share of the fleet, so the
       control arm is hot-node-bound (its p99 spread shows the convoy)
       while the fleet itself is not. Saturated (enough clients that
       throughput is capacity-bound, not think-time-bound) and
       read-mostly: each applied set invalidates every poller's replica
       of the key, so hits between invalidations scale as the get/set
       ratio over the poller count — at 10% sets a front cache cannot
       pay for itself, at 1% it must. Fewer pollers per node helps the
       cache twice: fewer replicas to invalidate per set, and more
       lookups per poller to feed the LFU duel. The keyspace is pinned
       at 4096 in both modes: the Zipf working set deepens with the key
       range, so letting the matrix default widen it in full mode
       dilutes the hit rate past what any cache size recovers (the
       measured ceiling at 16384 keys is ~78% hit / 1.43x even with a
       4x cache) — the A/B measures the cache, not the key range.
       hot-key-warm is the cache-off arm; hot-key-fc is identical plus
       a keyspace/8-entry per-poller front cache, and all() gates
       hot-key-fc at >= 1.5x hot-key-warm. *)
    scen "hot-key-warm"
      ~desc:"Zipf 0.99 skew, 8 shards, saturated, read-mostly — control arm"
      ~zipfian:true ~nnodes:8 ~npollers:4 ~nclients:8192 ~nconns:32 ~set_pct:1
      ~keyspace:4096 ~duration:(8 * default_duration)
      ~gates:(gates ~max_p99:3_200_000 ~min_goodput:10.0 ());
    scen "hot-key-fc"
      ~desc:"Zipf 0.99 skew, 8 shards, saturated, front cache on"
      ~zipfian:true ~nnodes:8 ~npollers:4 ~nclients:8192 ~nconns:32 ~set_pct:1
      ~keyspace:4096 ~duration:(8 * default_duration)
      ~front_cache:(4096 / 8)
      ~gates:(gates ~max_p99:3_200_000 ~min_goodput:15.0 ~max_spread:3.0 ());
    (* fleet scale: every user opens its own connection (nconns = nclients
       makes the per-node slot unique per user), one request each,
       uniformly staggered across the run by think = duration. Small rings
       bound per-connection footprint; the arrival rate (nclients/duration
       ~ 0.008 ops/cycle) sits well under the fleet's service ceiling, so
       the gates measure the connection machinery rather than a retry
       storm at saturation. This stage is what exposed the tail-locality
       ring bug fixed in Dps.attach: npollers = 10 with locality_size 4
       leaves a 2-member tail locality, and before the fold its
       partition's rings at the two missing member indices were served
       by nobody — every delegated get from the affected pollers waited
       out the full 50k-cycle escalation timeout, their connection
       queues crossed the shed threshold, and the per-connection retries
       re-concentrated on the same pollers in a metastable shed-retry
       storm (30% of ops dropped). Two knobs stay tuned for fleet scale:
       the park ceiling is clamped (mostly-idle partitions otherwise
       back off into 16k-cycle parks, which both pads delegated-get tail
       latency and multiplies awaiter spin work — 3x the wall time for
       the same result), and the shed threshold gets headroom over the
       512-conn-node default, which at 65k conns/node is a cliff one
       random arrival burst away. *)
    (let n = if quick then 262_144 else 1_000_000 in
     let dur = if quick then 32_000_000 else 128_000_000 in
     scen "scale"
       ~desc:(Printf.sprintf "%dk connections, one request each" (n / 1000))
       ~nclients:n ~nconns:n ~think:dur ~duration:dur ~npollers:10 ~max_conns:n
       ~ring_lines:8 ~park_max:2_000 ~shed:512
       ~gates:(gates ~max_p99:250_000 ~min_goodput:10.0 ~min_conns:250_000 ()));
  ]

(* --- running one scenario --- *)

type outcome = {
  s : scenario;
  rr : Netload.routed_result;
  verdict : Eo.verdict;
  kill_at : int;  (* -1 when no kill *)
  declared_at : int;  (* -1 when no failover happened *)
  pre_goodput : float;  (* mean completions/window before the kill *)
  post_goodput : float;  (* mean completions/window at the tail of the run *)
  fc : Frontcache.stats;  (* summed across every node's pollers *)
  spread : float;  (* hottest node p99 / median node p99 *)
  failures : string list;
}

(* hot-shard skew witness: the hottest node's p99 over the median node's
   p99, among nodes that completed work. 1.0 when fewer than two nodes
   report (nothing to spread). *)
let p99_spread (rr : Netload.routed_result) =
  let ps =
    Array.to_list rr.Netload.per_node_p99
    |> List.filteri (fun i _ -> rr.Netload.per_node_completed.(i) > 0)
    |> List.filter (fun p -> p > 0)
    |> List.sort compare
  in
  match ps with
  | [] | [ _ ] -> 1.0
  | _ ->
      let n = List.length ps in
      let med = List.nth ps (n / 2) in
      let hot = List.nth ps (n - 1) in
      float_of_int hot /. float_of_int (max 1 med)

let run_scenario (s : scenario) =
  let items = if s.s_items > 0 then s.s_items else items in
  let m = Machine.create scaled_config in
  let sched = Sthread.create m in
  let eo = Eo.create () in
  let dflt = Cluster.default_config in
  let ccfg =
    {
      dflt with
      Cluster.nnodes = s.nnodes;
      buckets = items;
      capacity = 2 * items;
      npollers = (if s.s_npollers > 0 then s.s_npollers else dflt.Cluster.npollers);
      server =
        {
          dflt.Cluster.server with
          Server.front_cache = s.front_cache;
          max_conns =
            (if s.s_max_conns > 0 then s.s_max_conns
             else dflt.Cluster.server.Server.max_conns);
          park_max =
            (if s.s_park_max > 0 then s.s_park_max
             else dflt.Cluster.server.Server.park_max);
          shed_threshold =
            (if s.s_shed > 0 then s.s_shed
             else dflt.Cluster.server.Server.shed_threshold);
        };
      net =
        {
          dflt.Cluster.net with
          Net.ring_lines =
            (if s.s_ring_lines > 0 then s.s_ring_lines else dflt.Cluster.net.Net.ring_lines);
        };
    }
  in
  let cluster =
    Cluster.create sched
      ~on_set_applied:(fun ~node ~tag -> if tag <> 0 then Eo.apply eo ~opid:tag ~node)
      ccfg
  in
  Cluster.populate cluster ~keys:(Array.init items Fun.id) ~val_lines:2;
  Cluster.start_probe cluster;
  let kill_at =
    if s.kill_frac > 0.0 then begin
      let at = int_of_float (float_of_int s.sduration *. s.kill_frac) in
      let faults = Dps_faults.install sched ~seed:7L (Dps_faults.spec ()) in
      Cluster.schedule_kill cluster faults ~node:1 ~at;
      at
    end
    else -1
  in
  let key_pool =
    if s.incast then
      Some
        (Array.of_seq
           (Seq.filter
              (fun k -> Ring.lookup (Cluster.ring cluster) k = 0)
              (Seq.init items Fun.id)))
    else None
  in
  let base =
    Netload.spec ~nclients:s.nclients ~nconns:s.nconns ~set_pct:s.set_pct
      ~key_range:items ~zipfian:s.zipfian
      ~mode:(Netload.Closed { think = (if s.sthink > 0 then s.sthink else 4_000) })
      ()
  in
  let rs =
    Netload.rspec ~base ?key_pool ~churn_interval:s.churn
      ~on_acked:(fun ~opid ~node -> Eo.ack eo ~opid ~node)
      ()
  in
  let rr =
    Netload.run_routed sched (Cluster.router cluster) rs ~duration:s.sduration
      ~stop:(fun () -> Cluster.stop cluster)
      ()
  in
  let fc = Frontcache.zero_stats () in
  for i = 0 to Cluster.node_count cluster - 1 do
    Frontcache.add_stats ~into:fc (Server.fc_stats (Cluster.node cluster i).Cluster.server)
  done;
  let spread = p99_spread rr in
  let verdict = Eo.check eo ~node_dead:(Cluster.node_dead cluster) in
  let declared_at =
    match Cluster.failover_log cluster with (_, t) :: _ -> t | [] -> -1
  in
  (* goodput recovery: mean completions/window over the windows fully
     before the kill vs the last quarter of the run (post-reroute). *)
  let tl = rr.Netload.goodput_timeline in
  let w = rr.Netload.window_cycles in
  let mean lo hi =
    if hi <= lo then 0.0
    else begin
      let s = ref 0 in
      for i = lo to hi - 1 do
        s := !s + tl.(i)
      done;
      float_of_int !s /. float_of_int (hi - lo)
    end
  in
  (* only full windows inside the issue horizon: the trailing +1 window
     holds drain-grace completions and would understate the tail *)
  let nfull = min (Array.length tl) (s.sduration / w) in
  let pre, post =
    if kill_at < 0 then (0.0, 0.0)
    else
      let kw = min (nfull - 1) (kill_at / w) in
      (mean 0 kw, mean (nfull - (nfull / 4)) nfull)
  in
  let g = s.sgates in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun msg -> failures := msg :: !failures) fmt in
  if g.g_max_p99 > 0 && rr.Netload.agg.Netload.p99 > g.g_max_p99 then
    fail "p99 %d > %d" rr.Netload.agg.Netload.p99 g.g_max_p99;
  if
    g.g_min_goodput > 0.0
    && rr.Netload.agg.Netload.throughput_mops < g.g_min_goodput
  then fail "goodput %.2f < %.2f Mops" rr.Netload.agg.Netload.throughput_mops g.g_min_goodput;
  if g.g_exactly_once && not (Eo.ok verdict) then
    fail "exactly-once violated: %d lost-acked, %d double-applied"
      (List.length verdict.Eo.lost_acked)
      (List.length verdict.Eo.double_applied);
  if g.g_reroute_cycles > 0 then begin
    if declared_at < 0 then fail "node kill never detected"
    else if declared_at - kill_at > g.g_reroute_cycles then
      fail "reroute took %d cycles > %d" (declared_at - kill_at) g.g_reroute_cycles
  end;
  if g.g_recovery_pct > 0.0 then begin
    let pct = if pre > 0.0 then 100.0 *. post /. pre else 0.0 in
    if pct < g.g_recovery_pct then
      fail "goodput recovered to %.1f%% < %.1f%% of pre-kill" pct g.g_recovery_pct
  end;
  if g.g_max_spread > 0.0 && spread > g.g_max_spread then
    fail "per-node p99 spread %.2fx > %.2fx" spread g.g_max_spread;
  if g.g_min_conns > 0 && rr.Netload.conns_opened < g.g_min_conns then
    fail "only %d connections opened < %d" rr.Netload.conns_opened g.g_min_conns;
  {
    s;
    rr;
    verdict;
    kill_at;
    declared_at;
    pre_goodput = pre;
    post_goodput = post;
    fc;
    spread;
    failures = List.rev !failures;
  }

(* --- reporting --- *)

let fc_lookups (fc : Frontcache.stats) =
  fc.Frontcache.hits + fc.Frontcache.misses + fc.Frontcache.stale

let fc_hit_rate (fc : Frontcache.stats) =
  let n = fc_lookups fc in
  if n = 0 then 0.0 else float_of_int fc.Frontcache.hits /. float_of_int n

let record (o : outcome) =
  let r = o.rr.Netload.agg in
  json_record ~series:o.s.sname ~x:"result"
    [
      ("goodput_mops", r.Netload.throughput_mops);
      ("p50", float_of_int r.Netload.p50);
      ("p99", float_of_int r.Netload.p99);
      ("p999", float_of_int r.Netload.p999);
      ("issued", float_of_int r.Netload.issued);
      ("completed", float_of_int r.Netload.completed);
      ("retries", float_of_int o.rr.Netload.retries);
      ("rerouted", float_of_int o.rr.Netload.rerouted);
      ("busy", float_of_int o.rr.Netload.busy);
      ("timeouts", float_of_int o.rr.Netload.timeouts);
      ("dropped", float_of_int o.rr.Netload.dropped);
      ("abandoned", float_of_int o.rr.Netload.abandoned);
      ("churned", float_of_int o.rr.Netload.churned);
      ("acked", float_of_int o.verdict.Eo.acked);
      ("cache_lost", float_of_int o.verdict.Eo.cache_lost);
      ("lost_acked", float_of_int (List.length o.verdict.Eo.lost_acked));
      ("double_applied", float_of_int (List.length o.verdict.Eo.double_applied));
      ("conns_opened", float_of_int o.rr.Netload.conns_opened);
      ("p99_spread", o.spread);
      ("fc_hit_rate", fc_hit_rate o.fc);
      ("fc_hits", float_of_int o.fc.Frontcache.hits);
      ("fc_stale", float_of_int o.fc.Frontcache.stale);
      ("fc_invals", float_of_int o.fc.Frontcache.invals);
      ("pass", if o.failures = [] then 1.0 else 0.0);
    ];
  (* the goodput-vs-kill-event figure: completions per window, with the
     kill and declared-dead times in window units alongside *)
  if o.kill_at >= 0 then begin
    let w = o.rr.Netload.window_cycles in
    Array.iteri
      (fun i c ->
        json_record
          ~series:(o.s.sname ^ "/timeline")
          ~x:(string_of_int i)
          [
            ("goodput", float_of_int c);
            ("kill_window", float_of_int o.kill_at /. float_of_int w);
            ("declared_window", float_of_int o.declared_at /. float_of_int w);
          ])
      o.rr.Netload.goodput_timeline
  end

let print_outcome (o : outcome) =
  let r = o.rr.Netload.agg in
  Printf.printf "%-11s %8.2f Mops  p99 %8d  retry %5d  reroute %4d  busy %5d  drop %3d  %s\n"
    o.s.sname r.Netload.throughput_mops r.Netload.p99 o.rr.Netload.retries
    o.rr.Netload.rerouted o.rr.Netload.busy o.rr.Netload.dropped
    (if o.failures = [] then "PASS" else "FAIL");
  if o.kill_at >= 0 then
    Printf.printf "%-11s   kill@%d declared@%d (+%d cyc)  goodput/window %.1f -> %.1f\n" ""
      o.kill_at o.declared_at
      (if o.declared_at >= 0 then o.declared_at - o.kill_at else -1)
      o.pre_goodput o.post_goodput;
  Printf.printf "%-11s   exactly-once: %s\n" "" (Format.asprintf "%a" Eo.pp_verdict o.verdict);
  Printf.printf "%-11s   conns %d  p99 spread %.2fx\n" "" o.rr.Netload.conns_opened o.spread;
  if fc_lookups o.fc > 0 then
    Printf.printf "%-11s   front-cache: %.1f%% hit (%d hits, %d stale, %d invals, %d admits)\n"
      "" (100.0 *. fc_hit_rate o.fc) o.fc.Frontcache.hits o.fc.Frontcache.stale
      o.fc.Frontcache.invals o.fc.Frontcache.admits;
  List.iter (fun msg -> Printf.printf "%-11s   GATE: %s\n" "" msg) o.failures

let all () =
  print_header "Cluster: sharded serving with failover — stress-scenario matrix";
  Printf.printf "%d nodes default, %d keys, scaled machine; quick=%b\n%!"
    Cluster.default_config.Cluster.nnodes items quick;
  let outcomes = map_points run_scenario matrix in
  List.iter
    (fun o ->
      Printf.printf "-- %s: %s\n" o.s.sname o.s.sdesc;
      record o;
      print_outcome o)
    outcomes;
  (* cross-stage gate: the front cache must actually buy throughput on
     the skewed workload it exists for. Recorded as its own series so the
     regression harness tracks the speedup alongside the hit rate. *)
  let fc_failures =
    let find n = List.find_opt (fun o -> o.s.sname = n) outcomes in
    match (find "hot-key-warm", find "hot-key-fc") with
    | Some off, Some on_ when off.rr.Netload.agg.Netload.throughput_mops > 0.0 ->
        let speedup =
          on_.rr.Netload.agg.Netload.throughput_mops
          /. off.rr.Netload.agg.Netload.throughput_mops
        in
        let ok = speedup >= 1.5 in
        Printf.printf "front-cache speedup on saturated hot-key: %.2fx (gate >= 1.50x)  %s\n"
          speedup (if ok then "PASS" else "FAIL");
        json_record ~series:"front-cache" ~x:"speedup"
          [
            ("speedup", speedup);
            ("fc_hit_rate", fc_hit_rate on_.fc);
            ("pass", if ok then 1.0 else 0.0);
          ];
        if ok then [] else [ Printf.sprintf "front-cache speedup %.2fx < 1.5x" speedup ]
    | _ -> []
  in
  let failed = List.filter (fun o -> o.failures <> []) outcomes in
  let n_failed = List.length failed + List.length fc_failures in
  if n_failed = 0 then
    Printf.printf "CLUSTER MATRIX: ALL %d STAGES PASS\n%!" (List.length outcomes)
  else begin
    Printf.printf "CLUSTER MATRIX: %d/%d STAGES FAILED (%s)\n%!" n_failed
      (List.length outcomes)
      (String.concat ", "
         (List.map (fun o -> o.s.sname) failed @ fc_failures))
  end

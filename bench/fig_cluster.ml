(** The cluster figure: sharded multi-node serving with failover, driven
    by a declarative stress-scenario matrix. Each scenario is a data
    record — fleet shape, key pattern, fault plan — plus a set of gates
    (p99 bound, goodput floor, exactly-once, kill-recovery). The matrix
    covers the failure modes the cluster layer exists for: incast onto one
    shard, all-to-all fan-out, a whole-node kill mid-run, a connection
    churn storm and hot-key skew. Every stage checks the exactly-once
    ledger ({!Dps_check.Eo}): no acked set may be lost or double-applied
    by the retry/failover machinery. *)

open Bench_common
module Machine = Dps_machine.Machine
module Sthread = Dps_sthread.Sthread
module Netload = Dps_workload.Netload
module Cluster = Dps_cluster.Cluster
module Ring = Dps_cluster.Ring
module Eo = Dps_check.Eo

let items = if quick then 4096 else 16384

(* --- the scenario matrix, as data --- *)

type gates = {
  g_max_p99 : int;  (* cycles; 0 = ungated *)
  g_min_goodput : float;  (* Mops/s; 0 = ungated *)
  g_exactly_once : bool;  (* no lost-acked / double-applied ops *)
  g_recovery_pct : float;  (* post-kill goodput floor vs pre-kill; 0 = ungated *)
  g_reroute_cycles : int;  (* kill -> declared-dead bound; 0 = ungated *)
}

let gates ?(max_p99 = 0) ?(min_goodput = 0.0) ?(exactly_once = true)
    ?(recovery_pct = 0.0) ?(reroute_cycles = 0) () =
  {
    g_max_p99 = max_p99;
    g_min_goodput = min_goodput;
    g_exactly_once = exactly_once;
    g_recovery_pct = recovery_pct;
    g_reroute_cycles = reroute_cycles;
  }

type scenario = {
  sname : string;
  sdesc : string;
  nnodes : int;
  nclients : int;
  nconns : int;  (* per node *)
  set_pct : int;
  zipfian : bool;  (* hot-key skew (Zipf theta 0.99) vs uniform *)
  incast : bool;  (* restrict keys to node 0's shard *)
  kill_frac : float;  (* kill node 1 at this fraction of the run; 0 = none *)
  churn : int;  (* churn interval, cycles; 0 = none *)
  sduration : int;
  sgates : gates;
}

let scen ?(nnodes = 4) ?(nclients = 512) ?(nconns = 16) ?(set_pct = 10)
    ?(zipfian = false) ?(incast = false) ?(kill_frac = 0.0) ?(churn = 0)
    ?(duration = default_duration) ~gates:sgates ~desc:sdesc sname =
  {
    sname;
    sdesc;
    nnodes;
    nclients;
    nconns;
    set_pct;
    zipfian;
    incast;
    kill_frac;
    churn;
    sduration = duration;
    sgates;
  }

let kill_duration = if quick then 240_000 else 600_000

(* Gate calibration: bounds are ~2x the measured steady-state values of
   the seed run, so they catch regressions (queueing collapse, broken
   rerouting) without tripping on scheduler noise. *)
let matrix =
  [
    scen "baseline"
      ~desc:"1:1 — balanced fleet, uniform keys, 4 shards"
      ~gates:(gates ~max_p99:200_000 ~min_goodput:10.0 ());
    scen "incast"
      ~desc:"N:1 — every client keyed onto node 0's shard"
      ~incast:true
      ~gates:(gates ~max_p99:400_000 ~min_goodput:2.0 ());
    scen "all-to-all"
      ~desc:"every client pool fans out over every shard"
      ~nclients:(if quick then 1024 else 2048)
      ~nconns:32
      ~gates:(gates ~max_p99:500_000 ~min_goodput:15.0 ());
    (* moderate load: the recovery gate measures rerouting, not the raw
       capacity loss of 4 -> 3 nodes, so the fleet must not saturate *)
    scen "node-kill"
      ~desc:"node 1 crashes mid-run; ring replays, fleet reroutes"
      ~nclients:256 ~kill_frac:0.4 ~duration:kill_duration
      ~gates:
        (gates ~max_p99:0 ~min_goodput:5.0 ~recovery_pct:90.0
           ~reroute_cycles:(2 * Cluster.default_config.Cluster.probe_interval + 40_000)
           ());
    scen "churn-storm"
      ~desc:"connections recycled continuously under load"
      ~churn:(if quick then 2_000 else 1_000)
      ~gates:(gates ~max_p99:350_000 ~min_goodput:8.0 ());
    scen "hot-key"
      ~desc:"Zipf 0.99 skew — one shard owns the hot keys"
      ~zipfian:true
      ~gates:(gates ~max_p99:200_000 ~min_goodput:10.0 ());
  ]

(* --- running one scenario --- *)

type outcome = {
  s : scenario;
  rr : Netload.routed_result;
  verdict : Eo.verdict;
  kill_at : int;  (* -1 when no kill *)
  declared_at : int;  (* -1 when no failover happened *)
  pre_goodput : float;  (* mean completions/window before the kill *)
  post_goodput : float;  (* mean completions/window at the tail of the run *)
  failures : string list;
}

let run_scenario (s : scenario) =
  let m = Machine.create scaled_config in
  let sched = Sthread.create m in
  let eo = Eo.create () in
  let ccfg =
    {
      Cluster.default_config with
      Cluster.nnodes = s.nnodes;
      buckets = items;
      capacity = 2 * items;
    }
  in
  let cluster =
    Cluster.create sched
      ~on_set_applied:(fun ~node ~tag -> if tag <> 0 then Eo.apply eo ~opid:tag ~node)
      ccfg
  in
  Cluster.populate cluster ~keys:(Array.init items Fun.id) ~val_lines:2;
  Cluster.start_probe cluster;
  let kill_at =
    if s.kill_frac > 0.0 then begin
      let at = int_of_float (float_of_int s.sduration *. s.kill_frac) in
      let faults = Dps_faults.install sched ~seed:7L (Dps_faults.spec ()) in
      Cluster.schedule_kill cluster faults ~node:1 ~at;
      at
    end
    else -1
  in
  let key_pool =
    if s.incast then
      Some
        (Array.of_seq
           (Seq.filter
              (fun k -> Ring.lookup (Cluster.ring cluster) k = 0)
              (Seq.init items Fun.id)))
    else None
  in
  let base =
    Netload.spec ~nclients:s.nclients ~nconns:s.nconns ~set_pct:s.set_pct
      ~key_range:items ~zipfian:s.zipfian ()
  in
  let rs =
    Netload.rspec ~base ?key_pool ~churn_interval:s.churn
      ~on_acked:(fun ~opid ~node -> Eo.ack eo ~opid ~node)
      ()
  in
  let rr =
    Netload.run_routed sched (Cluster.router cluster) rs ~duration:s.sduration
      ~stop:(fun () -> Cluster.stop cluster)
      ()
  in
  let verdict = Eo.check eo ~node_dead:(Cluster.node_dead cluster) in
  let declared_at =
    match Cluster.failover_log cluster with (_, t) :: _ -> t | [] -> -1
  in
  (* goodput recovery: mean completions/window over the windows fully
     before the kill vs the last quarter of the run (post-reroute). *)
  let tl = rr.Netload.goodput_timeline in
  let w = rr.Netload.window_cycles in
  let mean lo hi =
    if hi <= lo then 0.0
    else begin
      let s = ref 0 in
      for i = lo to hi - 1 do
        s := !s + tl.(i)
      done;
      float_of_int !s /. float_of_int (hi - lo)
    end
  in
  (* only full windows inside the issue horizon: the trailing +1 window
     holds drain-grace completions and would understate the tail *)
  let nfull = min (Array.length tl) (s.sduration / w) in
  let pre, post =
    if kill_at < 0 then (0.0, 0.0)
    else
      let kw = min (nfull - 1) (kill_at / w) in
      (mean 0 kw, mean (nfull - (nfull / 4)) nfull)
  in
  let g = s.sgates in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun msg -> failures := msg :: !failures) fmt in
  if g.g_max_p99 > 0 && rr.Netload.agg.Netload.p99 > g.g_max_p99 then
    fail "p99 %d > %d" rr.Netload.agg.Netload.p99 g.g_max_p99;
  if
    g.g_min_goodput > 0.0
    && rr.Netload.agg.Netload.throughput_mops < g.g_min_goodput
  then fail "goodput %.2f < %.2f Mops" rr.Netload.agg.Netload.throughput_mops g.g_min_goodput;
  if g.g_exactly_once && not (Eo.ok verdict) then
    fail "exactly-once violated: %d lost-acked, %d double-applied"
      (List.length verdict.Eo.lost_acked)
      (List.length verdict.Eo.double_applied);
  if g.g_reroute_cycles > 0 then begin
    if declared_at < 0 then fail "node kill never detected"
    else if declared_at - kill_at > g.g_reroute_cycles then
      fail "reroute took %d cycles > %d" (declared_at - kill_at) g.g_reroute_cycles
  end;
  if g.g_recovery_pct > 0.0 then begin
    let pct = if pre > 0.0 then 100.0 *. post /. pre else 0.0 in
    if pct < g.g_recovery_pct then
      fail "goodput recovered to %.1f%% < %.1f%% of pre-kill" pct g.g_recovery_pct
  end;
  {
    s;
    rr;
    verdict;
    kill_at;
    declared_at;
    pre_goodput = pre;
    post_goodput = post;
    failures = List.rev !failures;
  }

(* --- reporting --- *)

let record (o : outcome) =
  let r = o.rr.Netload.agg in
  json_record ~series:o.s.sname ~x:"result"
    [
      ("goodput_mops", r.Netload.throughput_mops);
      ("p50", float_of_int r.Netload.p50);
      ("p99", float_of_int r.Netload.p99);
      ("p999", float_of_int r.Netload.p999);
      ("issued", float_of_int r.Netload.issued);
      ("completed", float_of_int r.Netload.completed);
      ("retries", float_of_int o.rr.Netload.retries);
      ("rerouted", float_of_int o.rr.Netload.rerouted);
      ("busy", float_of_int o.rr.Netload.busy);
      ("timeouts", float_of_int o.rr.Netload.timeouts);
      ("dropped", float_of_int o.rr.Netload.dropped);
      ("abandoned", float_of_int o.rr.Netload.abandoned);
      ("churned", float_of_int o.rr.Netload.churned);
      ("acked", float_of_int o.verdict.Eo.acked);
      ("cache_lost", float_of_int o.verdict.Eo.cache_lost);
      ("lost_acked", float_of_int (List.length o.verdict.Eo.lost_acked));
      ("double_applied", float_of_int (List.length o.verdict.Eo.double_applied));
      ("pass", if o.failures = [] then 1.0 else 0.0);
    ];
  (* the goodput-vs-kill-event figure: completions per window, with the
     kill and declared-dead times in window units alongside *)
  if o.kill_at >= 0 then begin
    let w = o.rr.Netload.window_cycles in
    Array.iteri
      (fun i c ->
        json_record
          ~series:(o.s.sname ^ "/timeline")
          ~x:(string_of_int i)
          [
            ("goodput", float_of_int c);
            ("kill_window", float_of_int o.kill_at /. float_of_int w);
            ("declared_window", float_of_int o.declared_at /. float_of_int w);
          ])
      o.rr.Netload.goodput_timeline
  end

let print_outcome (o : outcome) =
  let r = o.rr.Netload.agg in
  Printf.printf "%-11s %8.2f Mops  p99 %8d  retry %5d  reroute %4d  busy %5d  drop %3d  %s\n"
    o.s.sname r.Netload.throughput_mops r.Netload.p99 o.rr.Netload.retries
    o.rr.Netload.rerouted o.rr.Netload.busy o.rr.Netload.dropped
    (if o.failures = [] then "PASS" else "FAIL");
  if o.kill_at >= 0 then
    Printf.printf "%-11s   kill@%d declared@%d (+%d cyc)  goodput/window %.1f -> %.1f\n" ""
      o.kill_at o.declared_at
      (if o.declared_at >= 0 then o.declared_at - o.kill_at else -1)
      o.pre_goodput o.post_goodput;
  Printf.printf "%-11s   exactly-once: %s\n" "" (Format.asprintf "%a" Eo.pp_verdict o.verdict);
  List.iter (fun msg -> Printf.printf "%-11s   GATE: %s\n" "" msg) o.failures

let all () =
  print_header "Cluster: sharded serving with failover — stress-scenario matrix";
  Printf.printf "%d nodes default, %d keys, scaled machine; quick=%b\n%!"
    Cluster.default_config.Cluster.nnodes items quick;
  let outcomes = map_points run_scenario matrix in
  List.iter
    (fun o ->
      Printf.printf "-- %s: %s\n" o.s.sname o.s.sdesc;
      record o;
      print_outcome o)
    outcomes;
  let failed = List.filter (fun o -> o.failures <> []) outcomes in
  if failed = [] then Printf.printf "CLUSTER MATRIX: ALL %d STAGES PASS\n%!" (List.length outcomes)
  else begin
    Printf.printf "CLUSTER MATRIX: %d/%d STAGES FAILED (%s)\n%!" (List.length failed)
      (List.length outcomes)
      (String.concat ", " (List.map (fun o -> o.s.sname) failed))
  end
